"""Random content-provider populations (the paper's 1000-CP workload).

Sections III and IV study a population of 1000 CPs whose parameters are
drawn independently:

* popularity ``alpha_i ~ U[0, 1]``;
* unconstrained throughput ``theta_hat_i ~ U[0, 1]``;
* CP-side revenue ``v_i ~ U[0, 1]``;
* throughput sensitivity ``beta_i ~ U[0, 10]``;
* consumer utility ``phi_i ~ U[0, beta_i]`` (main text) or
  ``phi_i ~ U[0, U[0, 10]]`` (appendix).

With these ranges, serving every CP at its unconstrained throughput needs a
per-capita capacity of about ``nu = 250`` (``E[alpha theta_hat] = 1/4``
times 1000 CPs), matching the paper's statement.  The exact draw used by
the authors is not published, so experiments regenerate the population from
a fixed seed; absolute surplus values therefore differ from the paper's
plots while the qualitative regimes are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelValidationError
from repro.network.provider import Population
from repro.workloads.utility import beta_correlated_utilities, independent_utilities

__all__ = ["PopulationSpec", "random_population", "paper_population"]

#: Seed used by all figure reproductions unless overridden.
DEFAULT_SEED = 20111106


@dataclass(frozen=True)
class PopulationSpec:
    """Parameter ranges for a random CP population.

    All parameters are drawn from uniform distributions over the given
    ``(low, high)`` ranges; the utility model selects between the paper's
    main-text (beta-correlated) and appendix (independent) ``phi`` draws.
    """

    count: int = 1000
    alpha_range: Tuple[float, float] = (0.0, 1.0)
    theta_hat_range: Tuple[float, float] = (0.0, 1.0)
    revenue_range: Tuple[float, float] = (0.0, 1.0)
    beta_range: Tuple[float, float] = (0.0, 10.0)
    utility_model: str = "beta_correlated"
    utility_scale: float = 10.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ModelValidationError("population count must be positive")
        for label, (low, high) in (
            ("alpha_range", self.alpha_range),
            ("theta_hat_range", self.theta_hat_range),
            ("revenue_range", self.revenue_range),
            ("beta_range", self.beta_range),
        ):
            if low < 0.0 or high < low:
                raise ModelValidationError(
                    f"{label} must satisfy 0 <= low <= high, got {(low, high)!r}"
                )
        if self.utility_model not in ("beta_correlated", "independent"):
            raise ModelValidationError(
                "utility_model must be 'beta_correlated' or 'independent', "
                f"got {self.utility_model!r}"
            )
        if self.utility_scale < 0.0:
            raise ModelValidationError("utility_scale must be non-negative")


def _uniform_open_low(rng: np.random.Generator, low: float, high: float,
                      size: int, minimum: float) -> np.ndarray:
    """Uniform draw, bumped away from zero where the model needs positivity.

    ``alpha`` and ``theta_hat`` must be strictly positive (a CP nobody ever
    accesses, or with zero throughput, is not a meaningful participant), so
    draws below ``minimum`` are clamped to it.
    """
    values = rng.uniform(low, high, size=size)
    return np.maximum(values, minimum)


def random_population(spec: PopulationSpec = PopulationSpec(), *,
                      seed: Optional[int] = DEFAULT_SEED,
                      rng: Optional[np.random.Generator] = None,
                      name_prefix: str = "cp") -> Population:
    """Draw a random population according to ``spec``.

    Either a ``seed`` (default: the library's fixed reproduction seed) or an
    explicit numpy ``Generator`` can be supplied; the latter takes
    precedence and allows embedding the draw in a larger experiment stream.
    """
    generator = rng if rng is not None else np.random.default_rng(seed)
    count = spec.count
    alphas = _uniform_open_low(generator, *spec.alpha_range, count, 1e-4)
    theta_hats = _uniform_open_low(generator, *spec.theta_hat_range, count, 1e-4)
    revenues = generator.uniform(*spec.revenue_range, size=count)
    betas = generator.uniform(*spec.beta_range, size=count)
    if spec.utility_model == "beta_correlated":
        utilities = beta_correlated_utilities(betas, rng=generator)
    else:
        utilities = independent_utilities(count, scale=spec.utility_scale,
                                          rng=generator)
    # Columnar construction: the draws feed the structure-of-arrays backing
    # store directly, so a million-CP population never materialises per-CP
    # objects (names are generated lazily from the prefix).
    return Population.from_columns(
        alphas, theta_hats, betas=betas, revenue_rates=revenues,
        utility_rates=utilities, name_prefix=name_prefix)


def paper_population(count: int = 1000, utility_model: str = "beta_correlated",
                     seed: int = DEFAULT_SEED) -> Population:
    """The paper's Section III/IV workload (1000 CPs, stated distributions).

    ``utility_model="independent"`` reproduces the appendix variant
    (Figures 9-12) with ``phi_i ~ U[0, U[0, 10]]``.  Because the appendix
    keeps every other CP characteristic identical to the main text, the
    independent-utility population is generated by redrawing only the
    utilities on top of the main-text population.
    """
    base = random_population(PopulationSpec(count=count), seed=seed)
    if utility_model == "beta_correlated":
        return base
    if utility_model == "independent":
        utilities = independent_utilities(count, scale=10.0, seed=seed + 1)
        return base.with_utility_rates(utilities)
    raise ModelValidationError(
        "utility_model must be 'beta_correlated' or 'independent', "
        f"got {utility_model!r}"
    )
