"""Consumer-utility models for the per-unit-traffic utility ``phi_i``.

The paper's main experiments draw ``phi_i ~ U[0, beta_i]`` — utility is
biased towards throughput-sensitive CPs (Skype-like applications bring more
value per byte), with some randomness.  The appendix repeats every
experiment with ``phi_i ~ U[0, U[0, 10]]``, the same scale but independent
of the sensitivity, and finds the same qualitative conclusions.  Both
models are provided here, plus a helper to overwrite the utilities of an
existing population.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelValidationError
from repro.network.provider import Population

__all__ = [
    "beta_correlated_utilities",
    "independent_utilities",
    "assign_utilities",
]


def _rng(seed: Optional[int], rng: Optional[np.random.Generator]
         ) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def beta_correlated_utilities(betas: Sequence[float], *, seed: Optional[int] = None,
                              rng: Optional[np.random.Generator] = None
                              ) -> np.ndarray:
    """The main-text model: ``phi_i ~ U[0, beta_i]``.

    Utility is biased towards CPs with high throughput sensitivity while
    keeping per-CP randomness.
    """
    betas_arr = np.asarray(betas, dtype=float)
    if np.any(betas_arr < 0.0):
        raise ModelValidationError("betas must be non-negative")
    generator = _rng(seed, rng)
    return generator.uniform(0.0, 1.0, size=betas_arr.shape) * betas_arr


def independent_utilities(count: int, *, scale: float = 10.0,
                          seed: Optional[int] = None,
                          rng: Optional[np.random.Generator] = None
                          ) -> np.ndarray:
    """The appendix model: ``phi_i ~ U[0, U[0, scale]]`` (independent of beta)."""
    if count < 0:
        raise ModelValidationError("count must be non-negative")
    if scale < 0.0:
        raise ModelValidationError("scale must be non-negative")
    generator = _rng(seed, rng)
    upper = generator.uniform(0.0, scale, size=count)
    return generator.uniform(0.0, 1.0, size=count) * upper


def assign_utilities(population: Population, model: str = "beta_correlated", *,
                     scale: float = 10.0, seed: Optional[int] = None,
                     rng: Optional[np.random.Generator] = None) -> Population:
    """Population copy with ``phi_i`` redrawn from the chosen model.

    ``model`` is ``"beta_correlated"`` (main text) or ``"independent"``
    (appendix).  CP characteristics other than ``phi`` are unchanged, which
    is exactly how the appendix experiments are constructed: same CPs, same
    CP decisions and ISP revenues, different consumer valuation.
    """
    if model == "beta_correlated":
        utilities = beta_correlated_utilities(population.betas, seed=seed, rng=rng)
    elif model == "independent":
        utilities = independent_utilities(len(population), scale=scale, seed=seed,
                                          rng=rng)
    else:
        raise ModelValidationError(
            f"model must be 'beta_correlated' or 'independent', got {model!r}"
        )
    return population.with_utility_rates(utilities)
