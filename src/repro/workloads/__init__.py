"""Workload generators: content-provider populations used by the paper.

* :mod:`repro.workloads.archetypes` — the three named archetypes of
  Section II-D (Google-, Netflix- and Skype-type CPs) and mixes thereof;
* :mod:`repro.workloads.populations` — the random 1000-CP population of
  Sections III/IV (``alpha, theta_hat, v ~ U[0,1]``, ``beta ~ U[0,10]``);
* :mod:`repro.workloads.utility` — the two consumer-utility models
  (``phi ~ U[0, beta]`` correlated with sensitivity, and the appendix's
  independent ``phi ~ U[0, U[0, 10]]``).
"""

from repro.workloads.archetypes import (
    google_type,
    netflix_type,
    skype_type,
    archetype_population,
    archetype_mix,
)
from repro.workloads.populations import (
    paper_population,
    random_population,
    PopulationSpec,
)
from repro.workloads.utility import (
    beta_correlated_utilities,
    independent_utilities,
    assign_utilities,
)

__all__ = [
    "google_type",
    "netflix_type",
    "skype_type",
    "archetype_population",
    "archetype_mix",
    "paper_population",
    "random_population",
    "PopulationSpec",
    "beta_correlated_utilities",
    "independent_utilities",
    "assign_utilities",
]
