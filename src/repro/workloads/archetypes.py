"""The paper's three content-provider archetypes (Section II-D).

The illustration of the max-min fair rate equilibrium (Figure 3) uses three
CPs meant to stand for broad application classes:

* **Google-type** — extensively accessed, low unconstrained throughput,
  insensitive to congestion: ``(alpha, theta_hat, beta) = (1, 1, 0.1)``;
* **Netflix-type** — throughput-hungry streaming with high sensitivity:
  ``(0.3, 10, 3)``;
* **Skype-type** — real-time media with medium throughput and extreme
  sensitivity: ``(0.5, 3, 5)``.

Throughput units follow the paper's convention (1 unit = the Google-type
unconstrained throughput, roughly 600 Kbps; the Netflix-type's 10 units
then correspond to a handful of Mbps).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ModelValidationError
from repro.network.provider import ContentProvider, Population

__all__ = [
    "google_type",
    "netflix_type",
    "skype_type",
    "archetype_population",
    "archetype_mix",
]


def google_type(name: str = "google", revenue_rate: float = 0.5,
                utility_rate: float = 0.1) -> ContentProvider:
    """A search-like CP: universally accessed, elastic, low rate."""
    return ContentProvider(name=name, alpha=1.0, theta_hat=1.0, beta=0.1,
                           revenue_rate=revenue_rate, utility_rate=utility_rate)


def netflix_type(name: str = "netflix", revenue_rate: float = 0.7,
                 utility_rate: float = 3.0) -> ContentProvider:
    """A streaming CP: high unconstrained throughput, throughput sensitive."""
    return ContentProvider(name=name, alpha=0.3, theta_hat=10.0, beta=3.0,
                           revenue_rate=revenue_rate, utility_rate=utility_rate)


def skype_type(name: str = "skype", revenue_rate: float = 0.4,
               utility_rate: float = 5.0) -> ContentProvider:
    """A real-time communications CP: medium rate, extremely sensitive."""
    return ContentProvider(name=name, alpha=0.5, theta_hat=3.0, beta=5.0,
                           revenue_rate=revenue_rate, utility_rate=utility_rate)


def archetype_population() -> Population:
    """The exact three-CP population of Figure 3."""
    return Population([google_type(), netflix_type(), skype_type()])


def archetype_mix(counts: Mapping[str, int],
                  revenue_rates: Optional[Mapping[str, float]] = None,
                  utility_rates: Optional[Mapping[str, float]] = None,
                  ) -> Population:
    """A larger population made of repeated archetypes.

    ``counts`` maps archetype names (``"google"``, ``"netflix"``, ``"skype"``)
    to the number of CPs of that type; clones are suffixed ``-0``, ``-1``,
    and so on.  Optional per-archetype revenue/utility overrides apply to
    every clone of that archetype.
    """
    factories = {"google": google_type, "netflix": netflix_type, "skype": skype_type}
    providers = []
    for archetype, count in counts.items():
        if archetype not in factories:
            raise ModelValidationError(
                f"unknown archetype {archetype!r}; expected one of {sorted(factories)}"
            )
        if count < 0:
            raise ModelValidationError("archetype counts must be non-negative")
        kwargs = {}
        if revenue_rates and archetype in revenue_rates:
            kwargs["revenue_rate"] = revenue_rates[archetype]
        if utility_rates and archetype in utility_rates:
            kwargs["utility_rate"] = utility_rates[archetype]
        for clone in range(count):
            providers.append(factories[archetype](name=f"{archetype}-{clone}", **kwargs))
    if not providers:
        raise ModelValidationError("archetype mix must contain at least one CP")
    return Population(providers)
