"""The reference (pure numpy) kernel backend.

This is the exact implementation that previously lived on
:class:`repro.network.equilibrium.ExponentialMaxMinProfile` — moved here
verbatim so other backends can be plugged in beside it.  Default-config
results are therefore bit-identical to the pre-backend solver: the scalar
tail pass keeps its ``out=``-kernel sequence and ``np.add.reduce``
(the same pairwise-summation tree as the vector path), and the grid pass
keeps its masked two-dimensional tail evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.equilibrium import ExponentialMaxMinProfile

__all__ = ["ReferenceBackend", "reference_backend"]


class ReferenceBackend:
    """Vectorised numpy kernels; the numerical baseline of the repo."""

    name = "reference"

    #: No fused bisection: ``CommonCapProfile.solve_cap`` drives
    #: :meth:`carried_scalar` directly, exactly as before the backend layer.
    bisect_scalar = None

    def carried_scalar(self, profile: ExponentialMaxMinProfile,
                       cap: float) -> float:
        """Scalar twin of :meth:`carried_grid`, bit-identical per evaluation.

        The one-element vector path reduces a ``(1, tail)`` row with the
        same pairwise tree as this contiguous 1-D sum, its all-true mask
        ``where`` is an identity, and the congestion tail (``theta > cap``)
        cannot overflow ``exp`` (exponents are non-positive; underflow is
        ignored by default), so no ``errstate`` guard is needed here.
        """
        if cap <= 0.0:
            return 0.0
        theta_hats = profile._theta_hats
        count = theta_hats.searchsorted(cap, side="right")
        saturated = profile._prefix[count]
        if count == profile.size:
            return float(saturated)
        # Same arithmetic as the expression form — ``theta/cap - 1`` then
        # ``alpha * exp(-beta * congestion) * cap`` — evaluated through
        # ``out=`` kernels into one contiguous buffer; ``np.add.reduce`` is
        # the reduction ``ndarray.sum`` itself dispatches to, so the pairwise
        # summation tree (and every bit of the result) is unchanged.
        buffer = profile._scratch[count:]
        np.divide(theta_hats[count:], cap, out=buffer)
        np.subtract(buffer, 1.0, out=buffer)
        np.multiply(profile._neg_betas[count:], buffer, out=buffer)
        np.exp(buffer, out=buffer)
        np.multiply(profile._alphas[count:], buffer, out=buffer)
        np.multiply(buffer, cap, out=buffer)
        return float(saturated + np.add.reduce(buffer))

    def carried_grid(self, profile: ExponentialMaxMinProfile,
                     caps: np.ndarray) -> np.ndarray:
        theta_hats = profile._theta_hats
        saturated_counts = np.searchsorted(theta_hats, caps, side="right")
        saturated = profile._prefix[saturated_counts]
        positive = caps > 0.0
        safe_caps = np.where(positive, caps, 1.0)
        # Only columns that can be congested for at least one cap matter.
        first_tail = int(saturated_counts.min()) if len(caps) else profile.size
        theta_tail = theta_hats[first_tail:]
        with np.errstate(over="ignore", under="ignore"):
            congestion = theta_tail[np.newaxis, :] / safe_caps[:, np.newaxis] - 1.0
            contributions = (profile._alphas[first_tail:]
                             * np.exp(-profile._betas[first_tail:] * congestion)
                             * safe_caps[:, np.newaxis])
        tail_mask = (np.arange(first_tail, profile.size)[np.newaxis, :]
                     >= saturated_counts[:, np.newaxis])
        tail = np.where(tail_mask, contributions, 0.0).sum(axis=-1)
        return np.where(positive, saturated + tail, 0.0)


_REFERENCE = ReferenceBackend()


def reference_backend() -> ReferenceBackend:
    """The process-wide reference backend singleton."""
    return _REFERENCE
