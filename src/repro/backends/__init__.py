"""Pluggable solver backends and the unified :class:`SolverConfig`.

``repro.backends`` owns the kernel-backend protocol (`KernelBackend`), the
two shipped backends (``reference`` — the exact numpy implementation the
profile classes used before this package existed — and the optional
njit-compiled ``numba`` backend), the name registry, and the frozen
:class:`SolverConfig` value object that threads backend choice, solver
tolerances and cache policy through every layer of the stack.
"""

from repro.backends.base import KernelBackend
from repro.backends.config import (BACKEND_ENV_VAR, SolverConfig,
                                   active_config, default_config,
                                   resolve_config, use_config)
from repro.backends.numba_backend import (NumbaBackend, load_numba_backend,
                                          numba_available, numba_version)
from repro.backends.reference import ReferenceBackend, reference_backend
from repro.backends.registry import (BACKEND_NAMES, available_backends,
                                     get_backend)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "KernelBackend",
    "NumbaBackend",
    "ReferenceBackend",
    "SolverConfig",
    "active_config",
    "available_backends",
    "default_config",
    "get_backend",
    "load_numba_backend",
    "numba_available",
    "numba_version",
    "reference_backend",
    "resolve_config",
    "use_config",
]
