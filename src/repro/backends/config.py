"""The unified solver configuration threaded through every layer.

:class:`SolverConfig` is a frozen value object bundling the kernel backend
choice, every solver tolerance that used to be hard-coded per layer, and
the cache policy.  Games, the batch/sweep layer and the runner all accept
``config=``; :func:`use_config` installs an ambient config so experiment
functions (whose signatures never mention it) inherit the runner's choice.

Tolerance defaults match the pre-refactor constants exactly, and the
per-game migration defaults (duopoly ``1e-4``, oligopoly ``1e-3``) are kept
by leaving ``migration_tolerance=None`` — a config only overrides a game's
documented default when one is set explicitly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.backends.base import KernelBackend
from repro.backends.numba_backend import numba_version
from repro.backends.registry import BACKEND_NAMES, get_backend
from repro.errors import ModelValidationError

__all__ = ["SolverConfig", "active_config", "default_config",
           "resolve_config", "use_config"]

#: Environment variable consulted by :func:`default_config`.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_CACHE_POLICIES = ("shared", "bypass")


@dataclass(frozen=True)
class SolverConfig:
    """Immutable solver settings shared by every layer of the stack.

    Parameters
    ----------
    backend:
        Kernel backend name (``"reference"`` or ``"numba"``).  ``"numba"``
        degrades to reference when numba is not installed — see
        :meth:`effective_backend`.
    migration_tolerance:
        Relative surplus-balance tolerance of the ISP market-split
        bisection, or ``None`` to keep each game's documented default
        (:data:`repro.core.duopoly.DUOPOLY_MIGRATION_TOLERANCE` = 1e-4,
        :data:`repro.core.oligopoly.OLIGOPOLY_MIGRATION_TOLERANCE` = 1e-3).
    switching_tolerance:
        Minimum per-CP utility gain that counts as a profitable partition
        switch in :class:`repro.core.cp_game.CPPartitionGame` (1e-6).
    surplus_tolerance:
        Utility-comparison slack when ranking partition preferences and
        verifying Nash/competitive equilibria (1e-9, the former
        ``_UTILITY_TOLERANCE``).
    bisection_tolerance:
        Relative work-conservation residual at which the Theorem-1 cap
        bisection stops (1e-13, the former ``_RESIDUAL_TOLERANCE``).
    cache_policy:
        ``"shared"`` uses the registered process-wide caches (entries keyed
        by :meth:`cache_key` so backends never alias); ``"bypass"``
        computes everything directly without reading or writing them.
    """

    backend: str = "reference"
    migration_tolerance: Optional[float] = None
    switching_tolerance: float = 1e-6
    surplus_tolerance: float = 1e-9
    bisection_tolerance: float = 1e-13
    cache_policy: str = "shared"

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ModelValidationError(
                f"unknown solver backend {self.backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if self.migration_tolerance is not None and not (
                self.migration_tolerance > 0.0):
            raise ModelValidationError(
                "migration_tolerance must be positive or None "
                f"(got {self.migration_tolerance!r})")
        if not self.switching_tolerance >= 0.0:
            raise ModelValidationError(
                "switching_tolerance must be non-negative "
                f"(got {self.switching_tolerance!r})")
        if not self.surplus_tolerance >= 0.0:
            raise ModelValidationError(
                "surplus_tolerance must be non-negative "
                f"(got {self.surplus_tolerance!r})")
        if not self.bisection_tolerance > 0.0:
            raise ModelValidationError(
                "bisection_tolerance must be positive "
                f"(got {self.bisection_tolerance!r})")
        if self.cache_policy not in _CACHE_POLICIES:
            raise ModelValidationError(
                f"unknown cache_policy {self.cache_policy!r}; "
                f"expected one of {_CACHE_POLICIES}")

    # -- backend resolution ------------------------------------------------ #

    def backend_instance(self) -> KernelBackend:
        """The live :class:`KernelBackend` this config resolves to."""
        return get_backend(self.backend)

    def effective_backend(self) -> str:
        """The backend actually used (numba falls back to reference)."""
        return self.backend_instance().name

    # -- identity ---------------------------------------------------------- #

    def cache_key(self) -> Tuple[object, ...]:
        """Hashable contribution to every registered cache's keys.

        Keyed on the *effective* backend so a numba config that fell back
        to reference shares (correctly identical) entries with reference
        configs instead of duplicating them.  Memoised per instance — the
        cached solver layers build one of these per lookup.
        """
        key = getattr(self, "_cache_key_memo", None)
        if key is None:
            key = ("solver", self.effective_backend(),
                   self.migration_tolerance, self.switching_tolerance,
                   self.surplus_tolerance, self.bisection_tolerance,
                   self.cache_policy)
            object.__setattr__(self, "_cache_key_memo", key)
        return key

    def provenance(self) -> Dict[str, object]:
        """Solver provenance recorded in artifacts and the run manifest.

        ``numba_version`` is included only when the effective backend is
        numba, so default (reference) runs serialize byte-identically on
        machines with and without numba installed.
        """
        effective = self.effective_backend()
        record: Dict[str, object] = {
            "backend": effective,
            "backend_requested": self.backend,
            "cache_policy": self.cache_policy,
            "tolerances": {
                "migration": self.migration_tolerance,
                "switching": self.switching_tolerance,
                "surplus": self.surplus_tolerance,
                "bisection": self.bisection_tolerance,
            },
        }
        if effective == "numba":
            record["numba_version"] = numba_version()
        return record

    def with_backend(self, backend: str) -> "SolverConfig":
        """A copy of this config with a different backend."""
        return replace(self, backend=backend)


_DEFAULT_CONFIGS: Dict[str, SolverConfig] = {}


def default_config() -> SolverConfig:
    """The process default: reference settings, backend from REPRO_BACKEND.

    Re-reads the environment variable on every call (so tests can
    monkeypatch it) but interns the resulting config per backend name —
    the solver hot loops resolve the default once per cached lookup.
    """
    backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or "reference"
    config = _DEFAULT_CONFIGS.get(backend)
    if config is None:
        config = SolverConfig(backend=backend)
        _DEFAULT_CONFIGS[backend] = config
    return config


# -- ambient config ------------------------------------------------------- #
# The runner executes registry experiment functions whose signatures don't
# take a config; ``use_config`` installs one for the duration of a run so
# every game/solver constructed inside inherits it via ``resolve_config``.

_ACTIVE: List[SolverConfig] = []


def active_config() -> Optional[SolverConfig]:
    """The innermost :func:`use_config` config, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def resolve_config(config: Optional[SolverConfig]) -> SolverConfig:
    """An explicit config, else the ambient one, else the process default."""
    if config is not None:
        return config
    ambient = active_config()
    if ambient is not None:
        return ambient
    return default_config()


@contextmanager
def use_config(config: SolverConfig) -> Iterator[SolverConfig]:
    """Install ``config`` as the ambient solver config for a ``with`` block."""
    _ACTIVE.append(config)
    try:
        yield config
    finally:
        _ACTIVE.pop()
