"""The kernel-backend protocol of the solver stack.

A :class:`KernelBackend` supplies the three numerical primitives behind the
Theorem-1 bisection on the sorted-``theta_hat`` prefix structure of
:class:`repro.network.equilibrium.ExponentialMaxMinProfile`:

* the **carried-load tail pass** (:meth:`KernelBackend.carried_scalar`) —
  the work-conservation LHS at one throughput cap: prefix lookup for the
  saturated providers plus the exponential-demand tail of Equation (3);
* the **prefix evaluation** (:meth:`KernelBackend.carried_grid`) — the same
  quantity at a whole vector of caps, used by each iteration of the
  vectorised multi-target bisection;
* optionally a **fused scalar bisection** (``bisect_scalar``) — the entire
  multi-iteration bisection of one capacity target in a single kernel call,
  mirroring ``CommonCapProfile.solve_cap``'s bracket and stopping rules.

Backends receive the profile object itself and read its sorted column
arrays (``_theta_hats``, ``_alphas``, ``_betas``, ``_neg_betas``,
``_prefix``, ``_scratch``); the profile is immutable after construction, so
a backend may precompute or reuse whatever it likes per call.

The ``reference`` backend is the numpy implementation that previously lived
inside the profile class and is bit-identical to it; the optional ``numba``
backend JIT-compiles the same arithmetic (agreeing to well below ``1e-10``)
and degrades gracefully to reference when numba is not installed.  Select a
backend with :class:`repro.backends.SolverConfig` or the ``REPRO_BACKEND``
environment variable.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Optional, Protocol,
                    runtime_checkable)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.equilibrium import ExponentialMaxMinProfile

__all__ = ["KernelBackend"]


@runtime_checkable
class KernelBackend(Protocol):
    """Numerical kernels for the max-min + exponential-demand profile.

    Implementations must be pure functions of the profile's arrays and the
    cap argument(s): two backends may differ in summation order (and hence
    in the last float bits) but must agree to ``<= 1e-10`` relative — the
    property-test suite in ``tests/backends`` asserts this.
    """

    #: Stable backend identifier used in cache keys and solver provenance.
    name: str

    @property
    def bisect_scalar(self) -> Optional[Callable[..., float]]:
        """Fused scalar bisection, or ``None`` for no fused path.

        When ``None`` the profile runs the generic ``solve_cap`` loop over
        :meth:`carried_scalar`.  Signature when present::

            bisect_scalar(profile, target, iterations,
                          residual_tolerance, width_tolerance) -> float

        with the same bracket ``[0, profile.upper]``, the same mid-point
        update order and the same residual/width stopping rules as
        ``CommonCapProfile.solve_cap`` (guards for empty/uncongested/zero
        targets are handled by the caller).  Declared as a read-only
        property so a plain ``bisect_scalar = None`` class attribute and a
        bound method both satisfy the protocol structurally.
        """
        ...

    def carried_scalar(self, profile: "ExponentialMaxMinProfile",
                       cap: float) -> float:
        """Per-capita carried load at a single throughput cap."""
        ...

    def carried_grid(self, profile: "ExponentialMaxMinProfile",
                     caps: np.ndarray) -> np.ndarray:
        """Per-capita carried load at each cap of a 1-D float vector."""
        ...
