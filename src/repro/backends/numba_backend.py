"""Optional numba (njit) kernel backend.

The kernels below are plain-Python loop implementations of the carried-load
tail pass, the grid evaluation and the fused scalar bisection; when numba
is importable they are compiled with ``numba.njit`` on first use (lazy —
importing this module never imports numba), and when it is not,
:func:`load_numba_backend` returns ``None`` so the registry falls back to
the reference backend.

Numerics: the loops accumulate the tail sum serially (left to right over
the sorted columns) instead of numpy's pairwise tree, so results differ
from the reference backend only in summation order — well inside the
``1e-10`` equivalence bound the backend contract requires (and the
property-test suite asserts).  The bisection kernel mirrors
``CommonCapProfile.solve_cap`` exactly: bracket ``[0, upper]``, mid-point
first, residual exit, then bracket update, then width exit, returning
``high`` on iteration exhaustion.

The undecorated Python functions remain directly callable; the equivalence
tests run them interpreted, so the kernel arithmetic is validated even on
machines (like the no-numba CI lane) where the JIT path cannot execute.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.equilibrium import ExponentialMaxMinProfile

__all__ = ["NumbaBackend", "load_numba_backend", "numba_available",
           "numba_version"]


# --------------------------------------------------------------------------- #
# Kernels (plain Python; njit-compiled when numba is present)
# --------------------------------------------------------------------------- #
# Each kernel is self-contained (no cross-kernel calls) so the njit
# compilation of one never depends on another being compiled; the saturated
# count is an inlined ``side="right"`` binary search on the sorted
# ``theta_hats``.

def _kernel_carried_scalar(theta_hats: np.ndarray, alphas: np.ndarray,
                           betas: np.ndarray, prefix: np.ndarray,
                           cap: float) -> float:
    if cap <= 0.0:
        return 0.0
    n = theta_hats.shape[0]
    low = 0
    high = n
    while low < high:
        mid = (low + high) // 2
        if theta_hats[mid] <= cap:
            low = mid + 1
        else:
            high = mid
    total = prefix[low]
    for i in range(low, n):
        total += alphas[i] * math.exp(-betas[i] * (theta_hats[i] / cap - 1.0)) * cap
    return total


def _kernel_carried_grid(theta_hats: np.ndarray, alphas: np.ndarray,
                         betas: np.ndarray, prefix: np.ndarray,
                         caps: np.ndarray) -> np.ndarray:
    n = theta_hats.shape[0]
    out = np.empty(caps.shape[0])
    for g in range(caps.shape[0]):
        cap = caps[g]
        if cap <= 0.0:
            out[g] = 0.0
            continue
        low = 0
        high = n
        while low < high:
            mid = (low + high) // 2
            if theta_hats[mid] <= cap:
                low = mid + 1
            else:
                high = mid
        total = prefix[low]
        for i in range(low, n):
            total += (alphas[i]
                      * math.exp(-betas[i] * (theta_hats[i] / cap - 1.0)) * cap)
        out[g] = total
    return out


def _kernel_bisect_scalar(theta_hats: np.ndarray, alphas: np.ndarray,
                          betas: np.ndarray, prefix: np.ndarray, upper: float,
                          target: float, iterations: int,
                          residual_tolerance: float,
                          width_tolerance: float) -> float:
    n = theta_hats.shape[0]
    low = 0.0
    high = upper
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        count_low = 0
        count_high = n
        while count_low < count_high:
            count_mid = (count_low + count_high) // 2
            if theta_hats[count_mid] <= mid:
                count_low = count_mid + 1
            else:
                count_high = count_mid
        value = prefix[count_low]
        for i in range(count_low, n):
            value += (alphas[i]
                      * math.exp(-betas[i] * (theta_hats[i] / mid - 1.0)) * mid)
        if abs(value - target) <= residual_tolerance:
            return mid
        if value < target:
            low = mid
        else:
            high = mid
        if high - low <= width_tolerance:
            return high
    return high


# --------------------------------------------------------------------------- #
# Lazy import / compilation
# --------------------------------------------------------------------------- #
_NUMBA_MODULE: Any = None
_NUMBA_CHECKED = False
_COMPILED: Optional[Tuple[Any, Any, Any]] = None


def _numba_module() -> Any:
    """The ``numba`` module, imported lazily; ``None`` when unavailable."""
    global _NUMBA_MODULE, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:
            import numba  # type: ignore[import-not-found]
        except Exception:  # pragma: no cover - depends on the environment
            _NUMBA_MODULE = None
        else:
            _NUMBA_MODULE = numba
    return _NUMBA_MODULE


def numba_available() -> bool:
    """True when numba can be imported in this interpreter."""
    return _numba_module() is not None


def numba_version() -> Optional[str]:
    """The installed numba version string, or ``None``."""
    module = _numba_module()
    return getattr(module, "__version__", None) if module is not None else None


def _compiled_kernels() -> Optional[Tuple[Any, Any, Any]]:
    """The njit-compiled kernel triple (compiled once per process)."""
    global _COMPILED
    if _COMPILED is None:
        module = _numba_module()
        if module is None:
            return None
        njit = module.njit(cache=False, fastmath=False, nogil=True)
        _COMPILED = (njit(_kernel_carried_scalar),
                     njit(_kernel_carried_grid),
                     njit(_kernel_bisect_scalar))
    return _COMPILED


class NumbaBackend:
    """njit-compiled kernels for the sorted-prefix max-min profile."""

    name = "numba"

    def __init__(self, kernels: Tuple[Any, Any, Any]) -> None:
        self._carried_scalar, self._carried_grid, self._bisect = kernels

    def carried_scalar(self, profile: ExponentialMaxMinProfile,
                       cap: float) -> float:
        return float(self._carried_scalar(
            profile._theta_hats, profile._alphas, profile._betas,
            profile._prefix, float(cap)))

    def carried_grid(self, profile: ExponentialMaxMinProfile,
                     caps: np.ndarray) -> np.ndarray:
        return self._carried_grid(
            profile._theta_hats, profile._alphas, profile._betas,
            profile._prefix, np.ascontiguousarray(caps, dtype=np.float64))

    def bisect_scalar(self, profile: ExponentialMaxMinProfile,
                      target: float, iterations: int,
                      residual_tolerance: float,
                      width_tolerance: float) -> float:
        return float(self._bisect(
            profile._theta_hats, profile._alphas, profile._betas,
            profile._prefix, float(profile.upper), float(target),
            iterations, residual_tolerance, width_tolerance))


def load_numba_backend() -> Optional[NumbaBackend]:
    """A :class:`NumbaBackend`, or ``None`` when numba is not installed."""
    kernels = _compiled_kernels()
    if kernels is None:
        return None
    return NumbaBackend(kernels)
