"""Backend registry: name → :class:`KernelBackend` resolution.

``get_backend("numba")`` degrades gracefully: when numba is not installed
it warns once per process and returns the reference backend, so a config
or ``REPRO_BACKEND=numba`` written for an accelerated machine still runs
(and still produces correct results) everywhere else.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro.backends.base import KernelBackend
from repro.backends.numba_backend import load_numba_backend
from repro.backends.reference import reference_backend
from repro.errors import ModelValidationError

__all__ = ["BACKEND_NAMES", "available_backends", "get_backend"]

#: Names accepted by ``SolverConfig.backend`` / ``REPRO_BACKEND``.
BACKEND_NAMES = ("reference", "numba")

_WARNED_NUMBA_FALLBACK = False


def get_backend(name: Optional[str] = "reference") -> KernelBackend:
    """Resolve a backend name to a live :class:`KernelBackend`.

    ``"numba"`` falls back to the reference backend (with a one-time
    ``RuntimeWarning``) when numba cannot be imported; unknown names raise
    :class:`ModelValidationError`.
    """
    if name is None or name == "reference":
        return reference_backend()
    if name == "numba":
        backend = load_numba_backend()
        if backend is not None:
            return backend
        global _WARNED_NUMBA_FALLBACK
        if not _WARNED_NUMBA_FALLBACK:
            _WARNED_NUMBA_FALLBACK = True
            warnings.warn(
                "backend 'numba' requested but numba is not installed; "
                "falling back to the reference backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return reference_backend()
    raise ModelValidationError(
        f"unknown solver backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def available_backends() -> List[str]:
    """Backend names that resolve to themselves on this machine."""
    names = ["reference"]
    if load_numba_backend() is not None:
        names.append("numba")
    return names
