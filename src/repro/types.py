"""Shared type aliases and light-weight protocols used across the package.

The library deliberately keeps its inter-module contracts small: demand
functions are callables of one float, populations are sequences of
:class:`repro.network.provider.ContentProvider`, and partitions are pairs of
index tuples.  Centralising the aliases here keeps signatures readable
without creating import cycles (this module imports nothing from the rest of
the package).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "BoolArray",
    "DemandCallable",
    "FloatArray",
    "IntArray",
    "Partition",
    "SupportsDemand",
    "ThroughputProfile",
]

#: A one-dimensional float64 column (populations, throughput vectors, grids).
FloatArray = np.ndarray[Any, np.dtype[np.float64]]

#: An integer index array (provider positions, saturated counts).
IntArray = np.ndarray[Any, np.dtype[np.integer]]

#: A boolean mask over a population (class membership, congestion flags).
BoolArray = np.ndarray[Any, np.dtype[np.bool_]]

#: A demand function: maps an achievable throughput ``theta`` (in the same
#: units as the provider's unconstrained throughput) to the fraction of the
#: provider's user base that still demands content, in ``[0, 1]``.
DemandCallable = Callable[[float], float]

#: Mapping from provider index (position inside a population) to the
#: achievable per-user throughput ``theta_i`` at equilibrium.
ThroughputProfile = Mapping[int, float]

#: A partition of provider indices into (ordinary, premium) classes.
Partition = Tuple[Tuple[int, ...], Tuple[int, ...]]


class SupportsDemand(Protocol):
    """Protocol for demand-function objects (Assumption 1 of the paper).

    A demand function must be defined on ``[0, theta_hat]``, be non-negative,
    continuous and non-decreasing, and evaluate to ``1`` at ``theta_hat``.
    """

    @property
    def theta_hat(self) -> float:
        """Unconstrained (maximum useful) per-user throughput."""
        ...

    def __call__(self, theta: float) -> float:
        """Fraction of users still demanding content at throughput ``theta``."""
        ...


def as_index_tuple(indices: Sequence[int]) -> Tuple[int, ...]:
    """Normalise a sequence of provider indices to a sorted, de-duplicated tuple."""
    return tuple(sorted(set(int(i) for i in indices)))
